// Command bpserve is the BarrierPoint analysis service: an HTTP/JSON API
// over a content-addressed trace store (internal/store) and an async job
// manager (internal/service). Clients upload recorded traces once, then
// submit analyze/simulate/estimate jobs; identical work is deduplicated in
// flight and every result is cached by content, so the paper's "one-time
// cost" analysis (Fig. 2) is paid once per trace regardless of how many
// machine configurations are later estimated.
//
// Usage:
//
//	bpserve -addr :8080 -store /var/lib/bpserve
//
// API:
//
//	POST /v1/traces            upload a .bptrace body → trace metadata
//	GET  /v1/traces            list stored trace keys
//	GET  /v1/traces/{key}      metadata + cached artifact names
//	GET  /v1/selections/{key}  cached selection (404 until analyzed);
//	                           ?signature=bbv|reuse_dist|combine
//	POST /v1/jobs              submit {"kind","trace","sockets","warmup",
//	                           "signature"} → job snapshot (202)
//	GET  /v1/jobs              list jobs
//	GET  /v1/jobs/{id}         job status; result embedded when done
//	GET  /healthz              liveness + readiness: store/queue counters,
//	                           WAL status, replay-cache and fleet state
//	GET  /debug/vars           expvar-style metrics
//	GET  /metrics              Prometheus text exposition (bp_-prefixed)
//
// The farm tier (see internal/farm) adds the worker-facing endpoints —
// bpworker processes register, lease point-simulation tasks, heartbeat
// their leases, fetch traces they are missing, and upload results:
//
//	POST /farm/register        join the fleet → worker id + lease TTL
//	POST /farm/lease           pull up to N leased tasks
//	POST /farm/heartbeat       renew held leases
//	POST /farm/result          upload a RegionResult (idempotent) or error
//	GET  /farm/workers         fleet status + queue stats
//	GET  /farm/trace/{key}     raw trace bytes for worker-side replay
//
// Estimate jobs choose their execution with "exec": "local", "farm", or
// "auto" (the default: farm whenever live workers are registered, local
// otherwise). Farmed and local estimates are bit-identical.
//
// -pprof mounts net/http/pprof under /debug/pprof/ on the same listener;
// -log-level and -log-json control the structured log on stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"barrierpoint/internal/farm"
	"barrierpoint/internal/fault"
	"barrierpoint/internal/obs"
	"barrierpoint/internal/service"
	"barrierpoint/internal/store"
	"barrierpoint/internal/tracefile"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "bpserve: %v\n", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until SIGINT/SIGTERM, then drains.
func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("bpserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		storeDir  = fs.String("store", "bpstore", "content-addressed store directory")
		workers   = fs.Int("workers", 0, "job worker goroutines (0 = GOMAXPROCS)")
		depth     = fs.Int("queue", 0, "job queue depth (0 = default)")
		maxMB     = fs.Int64("max-upload-mb", 1024, "largest accepted trace upload, MiB")
		leaseTTL  = fs.Duration("farm-lease-ttl", 30*time.Second, "farm task lease duration (heartbeats renew it)")
		retries   = fs.Int("farm-retries", 3, "farm task attempts before permanent failure")
		replayMB  = fs.Int64("replay-cache-mb", 256, "decoded-region replay cache budget, MiB (0 disables)")
		walPath   = fs.String("wal", "", "farm queue write-ahead log path (default <store>/farm.wal; \"off\" disables durability)")
		jobWal    = fs.String("job-wal", "", "job journal path (default <store>/jobs.wal; \"off\" disables crash-safe job recovery)")
		drainTO   = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget: time allowed for in-flight jobs to finish")
		faultSpec = fs.String("fault", "", "fault-injection spec, e.g. 'store.put-artifact:p=0.05' (chaos testing; see internal/fault)")
		pprofOn   = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	lf := obs.RegisterLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	logger, err := lf.Logger(stderr)
	if err != nil {
		return err
	}
	if err := fault.Configure(*faultSpec); err != nil {
		return err
	}
	if *faultSpec != "" {
		logger.Warn("fault injection armed", "spec", *faultSpec)
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	mgr := service.New(st, *workers, *depth)
	if *replayMB <= 0 {
		mgr.SetReplayCacheBytes(-1)
	} else {
		mgr.SetReplayCacheBytes(*replayMB << 20)
	}
	fcfg := farm.Config{LeaseTTL: *leaseTTL, MaxAttempts: *retries}
	wal := *walPath
	if wal == "" {
		wal = filepath.Join(*storeDir, "farm.wal")
	}
	if wal == "off" {
		mgr.SetFarm(farm.NewQueue(st, fcfg))
	} else {
		fq, recov, err := farm.NewDurableQueue(st, fcfg, wal)
		if err != nil {
			return fmt.Errorf("opening farm wal: %w", err)
		}
		if recov.Records > 0 {
			logger.Info(fmt.Sprintf(
				"farm wal %s: replayed %d records (%d bytes torn tail dropped): %d pending, %d in-flight requeued, %d resolved from store",
				wal, recov.Records, recov.Dropped, recov.Pending, recov.Requeued, recov.StoreHits))
		}
		mgr.SetFarm(fq)
	}
	if q := mgr.Farm(); q != nil {
		q.SetLogger(logger)
	}
	// The job journal is enabled after the farm is wired so recovered
	// estimate jobs re-enqueued at startup see the same execution tiers
	// a fresh submission would.
	jw := *jobWal
	if jw == "" {
		jw = filepath.Join(*storeDir, "jobs.wal")
	}
	if jw != "off" {
		recov, err := mgr.EnableJournal(jw)
		if err != nil {
			return fmt.Errorf("opening job journal: %w", err)
		}
		if recov.Records > 0 {
			logger.Info(fmt.Sprintf(
				"job journal %s: replayed %d records (%d bytes torn tail dropped): %d resolved from store, %d re-enqueued, %d already terminal, %d unrecoverable",
				jw, recov.Records, recov.Dropped, recov.Resolved, recov.Requeued, recov.Terminal, recov.Unrecoverable))
		}
	}
	srv := newServer(st, mgr)
	srv.maxUpload = *maxMB << 20
	if *pprofOn {
		srv.enablePprof()
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "store", *storeDir, "pprof", *pprofOn)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting connections, then let queued and
	// running jobs finish (bounded by -drain-timeout). Manager.Shutdown
	// journals every final state and closes the job journal only after a
	// full drain; on timeout the journal is left open, so the next start
	// replays and recovers whatever was cut off — same as a crash.
	logger.Info("shutting down", "drain_timeout", (*drainTO).String())
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	return mgr.Shutdown(shutCtx)
}

// server routes the HTTP API. It is an http.Handler; construction wires a
// fresh (unregistered) expvar map so tests can build many servers without
// colliding in expvar's process-global registry.
type server struct {
	st        *store.Store
	mgr       *service.Manager
	mux       *http.ServeMux
	started   time.Time
	maxUpload int64 // largest accepted trace body, bytes
	uploads   expvar.Int
	vars      expvar.Map
}

func newServer(st *store.Store, mgr *service.Manager) *server {
	s := &server{st: st, mgr: mgr, mux: http.NewServeMux(), started: time.Now(), maxUpload: 1 << 30}
	s.vars.Init()
	s.vars.Set("trace_uploads", &s.uploads)
	s.vars.Set("uptime_seconds", expvar.Func(func() any {
		return time.Since(s.started).Seconds()
	}))
	s.vars.Set("traces_stored", expvar.Func(func() any {
		keys, err := s.st.Traces()
		if err != nil {
			return -1
		}
		return len(keys)
	}))
	s.vars.Set("jobs", expvar.Func(func() any { return s.mgr.Stats() }))
	s.vars.Set("replay_cache", expvar.Func(func() any { return s.mgr.ReplayCacheStats() }))
	if q := mgr.Farm(); q != nil {
		s.vars.Set("farm", expvar.Func(func() any { return q.Stats() }))
		s.vars.Set("farm_recovery", expvar.Func(func() any { return q.Recovery() }))
		s.mux.Handle("/farm/", farm.NewServer(q, st))
	}

	// Server-level series join the manager's registry, so one /metrics
	// scrape covers the whole coordinator; the registry is also bridged
	// into /debug/vars under a single new "metrics" key, leaving every
	// pre-existing expvar key shape untouched.
	reg := mgr.Metrics()
	reg.CounterFunc("bp_trace_uploads_total", "Traces accepted by POST /v1/traces.", func() float64 {
		return float64(s.uploads.Value())
	})
	reg.GaugeFunc("bp_uptime_seconds", "Seconds since the server started.", func() float64 {
		return time.Since(s.started).Seconds()
	})
	reg.GaugeFunc("bp_traces_stored", "Distinct traces in the content-addressed store.", func() float64 {
		keys, err := s.st.Traces()
		if err != nil {
			return -1
		}
		return float64(len(keys))
	})
	s.vars.Set("metrics", reg.Expvar())

	s.mux.HandleFunc("POST /v1/traces", s.handleUpload)
	s.mux.HandleFunc("GET /v1/traces", s.handleListTraces)
	s.mux.HandleFunc("GET /v1/traces/{key}", s.handleGetTrace)
	s.mux.HandleFunc("GET /v1/selections/{key}", s.handleGetSelection)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.mux.Handle("GET /metrics", reg.Handler())
	return s
}

// enablePprof mounts net/http/pprof on the server's own mux (the server
// never uses http.DefaultServeMux, so the profiler is opt-in per process).
func (s *server) enablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON serializes v with an indent (responses are small and read by
// humans and shell scripts alike).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// jsonError is the uniform error payload.
func jsonError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// traceMeta summarizes a stored trace.
type traceMeta struct {
	Key       string   `json:"key"`
	Name      string   `json:"name"`
	Threads   int      `json:"threads"`
	Regions   int      `json:"regions"`
	SizeBytes int64    `json:"size_bytes"`
	Existed   bool     `json:"existed,omitempty"`
	Artifacts []string `json:"artifacts,omitempty"`
	// Ingest reports how the upload that created this response was
	// processed; present only on POST /v1/traces responses.
	Ingest *ingestStats `json:"ingest,omitempty"`
}

// ingestStats is the upload-time profiling summary: with a streamed
// (version-2) upload, every region profile is already cached by the time
// the client sees the 201, so profiles_computed regions were profiled
// in-flight and a following analyze computes none.
type ingestStats struct {
	Streamed         bool `json:"streamed"`
	ProfilesCached   int  `json:"profiles_cached"`
	ProfilesComputed int  `json:"profiles_computed"`
}

// meta opens the stored trace and summarizes it.
func (s *server) meta(key string) (traceMeta, error) {
	f, err := s.st.OpenTrace(key)
	if err != nil {
		return traceMeta{}, err
	}
	defer f.Close()
	p, err := s.st.TracePath(key)
	if err != nil {
		return traceMeta{}, err
	}
	fi, err := os.Stat(p)
	if err != nil {
		return traceMeta{}, err
	}
	return traceMeta{
		Key:       key,
		Name:      f.Name(),
		Threads:   f.Threads(),
		Regions:   f.Regions(),
		SizeBytes: fi.Size(),
	}, nil
}

// handleUpload streams the request body into the store as a trace: the
// bytes are hashed, durably persisted and — for version-2 uploads —
// profiled region by region while the transfer is still in progress, so
// by the time the 201 is written every region profile is cached. The body
// is capped at maxUpload bytes; invalid or oversized uploads are rejected
// and leave nothing behind (no trace, no partial profiles).
func (s *server) handleUpload(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.maxUpload)
	res, err := s.mgr.IngestTrace(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			jsonError(w, http.StatusRequestEntityTooLarge, "trace exceeds the %d byte upload limit", tooBig.Limit)
		case errors.Is(err, tracefile.ErrFormat):
			// The decoder may reject garbage before the size cap trips;
			// drain the capped body so an oversized upload still answers
			// 413, not a misleading format error.
			if _, derr := io.Copy(io.Discard, body); errors.As(derr, &tooBig) {
				jsonError(w, http.StatusRequestEntityTooLarge, "trace exceeds the %d byte upload limit", tooBig.Limit)
				return
			}
			jsonError(w, http.StatusBadRequest, "invalid trace: %v", err)
		default:
			jsonError(w, http.StatusInternalServerError, "storing trace: %v", err)
		}
		return
	}
	m, err := s.meta(res.Key)
	if err != nil {
		// IngestTrace validated the bytes, so this is a store-side failure;
		// mirror RemoveTrace cleanup for fresh uploads all the same.
		if !res.Existed {
			s.st.RemoveTrace(res.Key)
		}
		jsonError(w, http.StatusInternalServerError, "reading stored trace: %v", err)
		return
	}
	m.Existed = res.Existed
	m.Ingest = &ingestStats{
		Streamed:         res.Streamed,
		ProfilesCached:   res.ProfilesCached,
		ProfilesComputed: res.ProfilesComputed,
	}
	s.uploads.Add(1)
	code := http.StatusCreated
	if res.Existed {
		code = http.StatusOK
	}
	writeJSON(w, code, m)
}

func (s *server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	keys, err := s.st.Traces()
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if keys == nil {
		keys = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": keys})
}

func (s *server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !s.st.HasTrace(key) {
		jsonError(w, http.StatusNotFound, "trace %s not found", key)
		return
	}
	m, err := s.meta(key)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if m.Artifacts, err = s.st.Artifacts(key); err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// handleGetSelection serves a cached selection without triggering
// analysis; clients that want computation submit an analyze job.
func (s *server) handleGetSelection(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !s.st.HasTrace(key) {
		jsonError(w, http.StatusNotFound, "trace %s not found", key)
		return
	}
	maxK := 0
	if v := r.URL.Query().Get("max_k"); v != "" {
		var err error
		if maxK, err = strconv.Atoi(v); err != nil {
			jsonError(w, http.StatusBadRequest, "max_k: %v", err)
			return
		}
	}
	cfg, err := service.ConfigFor(r.URL.Query().Get("signature"), maxK)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	b, err := service.CachedSelection(s.st, key, cfg)
	if errors.Is(err, store.ErrNotFound) {
		jsonError(w, http.StatusNotFound, "no cached selection for trace %s (submit an analyze job)", key)
		return
	}
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req service.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	snap, err := s.mgr.Submit(req)
	switch {
	case errors.Is(err, store.ErrNotFound):
		jsonError(w, http.StatusNotFound, "%v", err)
		return
	case errors.Is(err, service.ErrBusy):
		jsonError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, service.ErrClosed):
		jsonError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, snap)
}

func (s *server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.mgr.Jobs()
	if jobs == nil {
		jobs = []service.Snapshot{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

func (s *server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		jsonError(w, http.StatusNotFound, "job %s not found", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleHealth reports liveness plus readiness detail: job-manager
// counters, replay-cache occupancy, and — when a farm queue is wired —
// fleet and write-ahead-log state. "ready" is true once the store is
// readable; orchestration probes can gate worker traffic on it.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	_, storeErr := s.st.Traces()
	rcs := s.mgr.ReplayCacheStats()
	body := map[string]any{
		"status":         "ok",
		"ready":          storeErr == nil,
		"uptime_seconds": time.Since(s.started).Seconds(),
		"stats":          s.mgr.Stats(),
		"replay_cache": map[string]any{
			"bytes":     rcs.Bytes,
			"max_bytes": rcs.MaxBytes,
		},
	}
	if storeErr != nil {
		body["store_error"] = storeErr.Error()
	}
	js := s.mgr.JournalStats()
	body["job_journal"] = map[string]any{
		"durable":     js.Durable,
		"bytes":       js.Bytes,
		"appends":     js.Appends,
		"errors":      js.Errors,
		"compactions": js.Compactions,
	}
	if rec := s.mgr.JobRecovery(); rec.Records > 0 {
		body["job_recovery"] = rec
	}
	if q := s.mgr.Farm(); q != nil {
		fs := q.Stats()
		body["farm"] = map[string]any{
			"workers_registered": len(q.Workers()),
			"workers_live":       fs.LiveWorkers,
			"tasks_pending":      fs.Pending,
			"tasks_leased":       fs.Leased,
			"wal": map[string]any{
				"durable":     q.Durable(),
				"bytes":       fs.WALBytes,
				"appends":     fs.WALAppends,
				"errors":      fs.WALErrors,
				"compactions": fs.WALCompactions,
			},
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleVars renders the server's private expvar map in the same format as
// expvar's process-global /debug/vars handler.
func (s *server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{")
	first := true
	s.vars.Do(func(kv expvar.KeyValue) {
		if !first {
			fmt.Fprintf(w, ",")
		}
		first = false
		fmt.Fprintf(w, "\n%q: %s", kv.Key, kv.Value)
	})
	fmt.Fprintf(w, "\n}\n")
}
