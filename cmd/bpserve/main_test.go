package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"barrierpoint/internal/farm"
	"barrierpoint/internal/service"
	"barrierpoint/internal/store"
	"barrierpoint/internal/tracefile"
	"barrierpoint/internal/workload"
)

// newTestServer builds a server over a fresh store and returns it with its
// base URL and manager.
func newTestServer(t *testing.T) (*httptest.Server, *service.Manager) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := service.New(st, 2, 0)
	ts := httptest.NewServer(newServer(st, mgr))
	t.Cleanup(func() {
		ts.Close()
		mgr.Shutdown(context.Background())
	})
	return ts, mgr
}

// doJSON performs a request and decodes the JSON response into out.
func doJSON(t *testing.T, method, url string, body []byte, wantCode int, out any) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s = %d, want %d\nbody: %s", method, url, resp.StatusCode, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s %s response: %v\nbody: %s", method, url, err, raw)
		}
	}
}

// jsonEqual compares two JSON documents ignoring whitespace.
func jsonEqual(t *testing.T, a, b []byte) bool {
	t.Helper()
	var ca, cb bytes.Buffer
	if err := json.Compact(&ca, a); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&cb, b); err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ca.Bytes(), cb.Bytes())
}

// pollJob polls a job until it is terminal, as an HTTP client would.
func pollJob(t *testing.T, base, id string) service.Snapshot {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var snap service.Snapshot
		doJSON(t, "GET", base+"/v1/jobs/"+id, nil, http.StatusOK, &snap)
		if snap.Terminal() {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 2m", id, snap.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEndToEnd is the acceptance test for the serving subsystem: a real
// recorded trace travels upload → analyze → estimate over HTTP, repeat
// requests hit the cache, and the auxiliary endpoints respond.
func TestEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)
	base := ts.URL

	// Record a real workload trace into memory.
	var buf bytes.Buffer
	prog := workload.New("npb-is", 8, workload.WithScale(0.05))
	if err := tracefile.Record(&buf, prog); err != nil {
		t.Fatal(err)
	}
	traceBytes := buf.Bytes()

	// Upload.
	var meta struct {
		Key     string `json:"key"`
		Name    string `json:"name"`
		Threads int    `json:"threads"`
		Regions int    `json:"regions"`
		Existed bool   `json:"existed"`
	}
	doJSON(t, "POST", base+"/v1/traces", traceBytes, http.StatusCreated, &meta)
	if meta.Name != "npb-is" || meta.Threads != 8 || meta.Existed {
		t.Fatalf("upload metadata %+v", meta)
	}
	wantKey, err := store.ReaderKey(bytes.NewReader(traceBytes))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Key != wantKey {
		t.Fatalf("upload key %s, want content hash %s", meta.Key, wantKey)
	}

	// Re-upload dedupes by content.
	var meta2 struct {
		Key     string `json:"key"`
		Existed bool   `json:"existed"`
	}
	doJSON(t, "POST", base+"/v1/traces", traceBytes, http.StatusOK, &meta2)
	if meta2.Key != meta.Key || !meta2.Existed {
		t.Errorf("re-upload %+v, want same key and existed", meta2)
	}

	// No selection cached yet.
	doJSON(t, "GET", base+"/v1/selections/"+meta.Key, nil, http.StatusNotFound, nil)

	// Analyze.
	var snap service.Snapshot
	doJSON(t, "POST", base+"/v1/jobs",
		[]byte(fmt.Sprintf(`{"kind":"analyze","trace":%q}`, meta.Key)),
		http.StatusAccepted, &snap)
	done := pollJob(t, base, snap.ID)
	if done.Status != service.StatusDone {
		t.Fatalf("analyze failed: %s", done.Error)
	}
	var sel struct {
		Program string `json:"program"`
		K       int    `json:"k"`
	}
	if err := json.Unmarshal(done.Result, &sel); err != nil {
		t.Fatal(err)
	}
	if sel.Program != "npb-is" || sel.K < 1 {
		t.Errorf("selection result %+v", sel)
	}

	// The cached selection endpoint now serves the same bytes.
	resp, err := http.Get(base + "/v1/selections/" + meta.Key)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	// The job snapshot re-encodes the artifact (whitespace may differ), so
	// compare canonical forms; the store-layer tests assert byte identity.
	if resp.StatusCode != http.StatusOK || !jsonEqual(t, cached, done.Result) {
		t.Errorf("GET selection: code %d, selection differs from job result", resp.StatusCode)
	}

	// A repeat analyze job is a cache hit with identical bytes.
	var snap2 service.Snapshot
	doJSON(t, "POST", base+"/v1/jobs",
		[]byte(fmt.Sprintf(`{"kind":"analyze","trace":%q}`, meta.Key)),
		http.StatusAccepted, &snap2)
	done2 := pollJob(t, base, snap2.ID)
	if done2.ID != done.ID && !done2.Cached {
		t.Errorf("repeat analyze: new job %s not served from cache", done2.ID)
	}
	if !jsonEqual(t, done2.Result, done.Result) {
		t.Error("repeat analyze returned a different selection")
	}

	// Estimate with MRU warmup.
	doJSON(t, "POST", base+"/v1/jobs",
		[]byte(fmt.Sprintf(`{"kind":"estimate","trace":%q,"warmup":"mru"}`, meta.Key)),
		http.StatusAccepted, &snap)
	done = pollJob(t, base, snap.ID)
	if done.Status != service.StatusDone {
		t.Fatalf("estimate failed: %s", done.Error)
	}
	var est service.EstimateResult
	if err := json.Unmarshal(done.Result, &est); err != nil {
		t.Fatal(err)
	}
	if est.TimeNs <= 0 || est.IPC <= 0 || est.DRAMAPKI < 0 || est.Cores != 8 || est.Warmup != "mru" {
		t.Errorf("estimate result %+v", est)
	}

	// Trace metadata now lists the cached artifacts.
	var full struct {
		Artifacts []string `json:"artifacts"`
	}
	doJSON(t, "GET", base+"/v1/traces/"+meta.Key, nil, http.StatusOK, &full)
	var haveSel, haveEst bool
	for _, a := range full.Artifacts {
		haveSel = haveSel || strings.HasPrefix(a, "selection-")
		haveEst = haveEst || strings.HasPrefix(a, "estimate-")
	}
	if !haveSel || !haveEst {
		t.Errorf("artifacts %v missing selection/estimate", full.Artifacts)
	}

	// Trace listing.
	var list struct {
		Traces []string `json:"traces"`
	}
	doJSON(t, "GET", base+"/v1/traces", nil, http.StatusOK, &list)
	if len(list.Traces) != 1 || list.Traces[0] != meta.Key {
		t.Errorf("trace list %v", list.Traces)
	}

	// Health and metrics.
	var health struct {
		Status string `json:"status"`
		Stats  struct {
			Done int64 `json:"jobs_done"`
		} `json:"stats"`
	}
	doJSON(t, "GET", base+"/healthz", nil, http.StatusOK, &health)
	if health.Status != "ok" || health.Stats.Done < 3 {
		t.Errorf("health %+v", health)
	}
	var vars struct {
		TraceUploads int `json:"trace_uploads"`
		TracesStored int `json:"traces_stored"`
		Jobs         struct {
			CacheHits int64 `json:"cache_hits"`
		} `json:"jobs"`
	}
	doJSON(t, "GET", base+"/debug/vars", nil, http.StatusOK, &vars)
	if vars.TraceUploads != 2 || vars.TracesStored != 1 || vars.Jobs.CacheHits < 1 {
		t.Errorf("vars %+v", vars)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	base := ts.URL

	// Invalid trace upload is rejected and not stored.
	doJSON(t, "POST", base+"/v1/traces", []byte("not a trace"), http.StatusBadRequest, nil)
	var list struct {
		Traces []string `json:"traces"`
	}
	doJSON(t, "GET", base+"/v1/traces", nil, http.StatusOK, &list)
	if len(list.Traces) != 0 {
		t.Errorf("invalid upload was stored: %v", list.Traces)
	}

	// Oversized uploads are rejected (413) and not stored.
	srv2, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := service.New(srv2, 1, 0)
	s := newServer(srv2, mgr2)
	s.maxUpload = 16
	tiny := httptest.NewServer(s)
	defer func() {
		tiny.Close()
		mgr2.Shutdown(context.Background())
	}()
	doJSON(t, "POST", tiny.URL+"/v1/traces", bytes.Repeat([]byte("x"), 64),
		http.StatusRequestEntityTooLarge, nil)
	doJSON(t, "GET", tiny.URL+"/v1/traces", nil, http.StatusOK, &list)
	if len(list.Traces) != 0 {
		t.Errorf("oversized upload was stored: %v", list.Traces)
	}

	// Jobs against unknown traces 404; malformed bodies 400.
	missing := strings.Repeat("0", store.KeyLen)
	doJSON(t, "POST", base+"/v1/jobs",
		[]byte(fmt.Sprintf(`{"kind":"analyze","trace":%q}`, missing)),
		http.StatusNotFound, nil)
	doJSON(t, "POST", base+"/v1/jobs", []byte(`{"kind":`), http.StatusBadRequest, nil)
	doJSON(t, "POST", base+"/v1/jobs", []byte(`{"kind":"analyze","surprise":1}`), http.StatusBadRequest, nil)

	// Unknown job and trace lookups 404.
	doJSON(t, "GET", base+"/v1/jobs/job-999999", nil, http.StatusNotFound, nil)
	doJSON(t, "GET", base+"/v1/traces/"+missing, nil, http.StatusNotFound, nil)
	doJSON(t, "GET", base+"/v1/selections/"+missing, nil, http.StatusNotFound, nil)
}

// TestFarmEndToEnd exercises the farm tier through the real bpserve mux:
// upload a trace, submit a farmed estimate, serve it with bpworker's
// protocol client acting as the fleet, and check the result matches a
// local estimate of the same trace byte for byte.
func TestFarmEndToEnd(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := service.New(st, 2, 0)
	mgr.SetFarm(farm.NewQueue(st, farm.Config{LeaseTTL: 5 * time.Second}))
	ts := httptest.NewServer(newServer(st, mgr))
	defer func() {
		ts.Close()
		mgr.Shutdown(context.Background())
	}()
	base := ts.URL

	var buf bytes.Buffer
	if err := tracefile.Record(&buf, workload.New("npb-is", 8, workload.WithScale(0.05))); err != nil {
		t.Fatal(err)
	}
	var meta struct {
		Key string `json:"key"`
	}
	doJSON(t, "POST", base+"/v1/traces", buf.Bytes(), http.StatusCreated, &meta)

	// Submit the farmed estimate first; it blocks until the fleet works.
	var farmedJob service.Snapshot
	doJSON(t, "POST", base+"/v1/jobs",
		[]byte(fmt.Sprintf(`{"kind":"estimate","trace":%q,"warmup":"mru","exec":"farm"}`, meta.Key)),
		http.StatusAccepted, &farmedJob)

	// A worker joins over the public protocol and drains the queue.
	c := &farm.Client{Base: base}
	if err := c.Register("e2e-worker"); err != nil {
		t.Fatal(err)
	}
	wst, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	workerCtx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	go func() {
		for workerCtx.Err() == nil {
			tasks, err := c.Lease(4)
			if err != nil {
				return
			}
			for _, task := range tasks {
				if err := c.FetchTrace(wst, task.TraceKey); err != nil {
					c.Fail(task, err.Error())
					continue
				}
				res, err := farm.ExecuteTask(wst, task)
				if err != nil {
					c.Fail(task, err.Error())
					continue
				}
				c.Complete(task, res)
			}
			if len(tasks) == 0 {
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	farmed := pollJob(t, base, farmedJob.ID)
	if farmed.Status != service.StatusDone {
		t.Fatalf("farmed estimate failed: %s", farmed.Error)
	}

	// Fleet status shows the worker; expvar exposes farm stats.
	var fleet struct {
		Workers []farm.WorkerInfo `json:"workers"`
		Stats   farm.Stats        `json:"stats"`
	}
	doJSON(t, "GET", base+"/farm/workers", nil, http.StatusOK, &fleet)
	if len(fleet.Workers) != 1 || fleet.Workers[0].Name != "e2e-worker" {
		t.Fatalf("fleet: %+v", fleet.Workers)
	}
	if fleet.Stats.Completed == 0 {
		t.Fatalf("no completed tasks in stats: %+v", fleet.Stats)
	}
	var vars map[string]json.RawMessage
	doJSON(t, "GET", base+"/debug/vars", nil, http.StatusOK, &vars)
	if _, ok := vars["farm"]; !ok {
		t.Fatalf("expvar missing farm section: %v", vars)
	}

	// The same estimate computed locally on a second, farm-free server
	// over a fresh store must be byte-identical.
	st2, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := service.New(st2, 2, 0)
	ts2 := httptest.NewServer(newServer(st2, mgr2))
	defer func() {
		ts2.Close()
		mgr2.Shutdown(context.Background())
	}()
	doJSON(t, "POST", ts2.URL+"/v1/traces", buf.Bytes(), http.StatusCreated, &meta)
	var localJob service.Snapshot
	doJSON(t, "POST", ts2.URL+"/v1/jobs",
		[]byte(fmt.Sprintf(`{"kind":"estimate","trace":%q,"warmup":"mru","exec":"local"}`, meta.Key)),
		http.StatusAccepted, &localJob)
	local := pollJob(t, ts2.URL, localJob.ID)
	if local.Status != service.StatusDone {
		t.Fatalf("local estimate failed: %s", local.Error)
	}
	if !jsonEqual(t, farmed.Result, local.Result) {
		t.Fatalf("farmed != local:\nfarmed: %s\nlocal:  %s", farmed.Result, local.Result)
	}
}

// TestMetricsAndHealthEndpoints drives a farmed estimate through the full
// server and then checks the observability surface: /metrics serves valid
// Prometheus text with monotone histogram buckets, /debug/vars bridges
// the same registry under the "metrics" key with matching values, and
// /healthz reports readiness with replay-cache, fleet and WAL state.
func TestMetricsAndHealthEndpoints(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := service.New(st, 2, 0)
	q := farm.NewQueue(st, farm.Config{LeaseTTL: 5 * time.Second})
	mgr.SetFarm(q)
	ts := httptest.NewServer(newServer(st, mgr))
	defer func() {
		ts.Close()
		mgr.Shutdown(context.Background())
	}()
	base := ts.URL
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go farm.RunLocalWorker(ctx, q, st, "metrics-test-worker")

	var buf bytes.Buffer
	if err := tracefile.Record(&buf, workload.New("npb-is", 8, workload.WithScale(0.05))); err != nil {
		t.Fatal(err)
	}
	var meta struct {
		Key string `json:"key"`
	}
	doJSON(t, "POST", base+"/v1/traces", buf.Bytes(), http.StatusCreated, &meta)
	var job service.Snapshot
	doJSON(t, "POST", base+"/v1/jobs",
		[]byte(fmt.Sprintf(`{"kind":"estimate","trace":%q,"warmup":"mru","exec":"farm"}`, meta.Key)),
		http.StatusAccepted, &job)
	done := pollJob(t, base, job.ID)
	if done.Status != service.StatusDone {
		t.Fatalf("estimate failed: %s", done.Error)
	}
	if done.TraceID == "" || done.Span == nil {
		t.Fatalf("job snapshot lacks telemetry: trace_id=%q span=%v", done.TraceID, done.Span)
	}

	// /metrics: valid exposition, expected series nonzero, buckets
	// cumulative (monotone non-decreasing, ending at the count).
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	samples := make(map[string]float64)
	for _, line := range strings.Split(string(text), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed exposition line %q", line)
		}
		var f float64
		if _, err := fmt.Sscanf(val, "%g", &f); err != nil {
			t.Fatalf("non-numeric sample %q: %v", line, err)
		}
		samples[name] = f
	}
	for _, name := range []string{
		"bp_jobs_submitted_total", "bp_jobs_done_total", "bp_trace_uploads_total",
		"bp_farm_tasks_enqueued_total", "bp_farm_tasks_completed_total",
	} {
		if samples[name] < 1 {
			t.Errorf("%s = %v, want >= 1", name, samples[name])
		}
	}
	prev := -1.0
	var bucketCount int
	for _, le := range []string{"0.1", "1", "10", "+Inf"} {
		name := fmt.Sprintf("bp_farm_task_seconds_bucket{le=%q}", le)
		v, ok := samples[name]
		if !ok {
			continue
		}
		bucketCount++
		if v < prev {
			t.Errorf("bucket %s = %v below previous %v (not cumulative)", name, v, prev)
		}
		prev = v
	}
	if bucketCount == 0 {
		t.Error("no bp_farm_task_seconds buckets in exposition")
	}
	if samples[`bp_farm_task_seconds_bucket{le="+Inf"}`] != samples["bp_farm_task_seconds_count"] {
		t.Errorf("+Inf bucket %v != count %v",
			samples[`bp_farm_task_seconds_bucket{le="+Inf"}`], samples["bp_farm_task_seconds_count"])
	}

	// /debug/vars: pre-existing keys intact, plus the registry bridge
	// agreeing with the exposition on a shared counter.
	var vars struct {
		Jobs    json.RawMessage            `json:"jobs"`
		Farm    json.RawMessage            `json:"farm"`
		Metrics map[string]json.RawMessage `json:"metrics"`
	}
	doJSON(t, "GET", base+"/debug/vars", nil, http.StatusOK, &vars)
	if vars.Jobs == nil || vars.Farm == nil {
		t.Fatal("expvar lost a pre-existing key")
	}
	var bridged float64
	if err := json.Unmarshal(vars.Metrics["bp_jobs_done_total"], &bridged); err != nil {
		t.Fatalf("expvar bridge bp_jobs_done_total: %v", err)
	}
	if bridged != samples["bp_jobs_done_total"] {
		t.Errorf("expvar bridge bp_jobs_done_total = %v, exposition says %v",
			bridged, samples["bp_jobs_done_total"])
	}

	// /healthz: readiness plus replay-cache, fleet and WAL detail.
	var health struct {
		Status      string `json:"status"`
		Ready       bool   `json:"ready"`
		ReplayCache struct {
			MaxBytes int64 `json:"max_bytes"`
		} `json:"replay_cache"`
		Farm struct {
			WorkersRegistered int `json:"workers_registered"`
			WorkersLive       int `json:"workers_live"`
			WAL               struct {
				Durable bool `json:"durable"`
			} `json:"wal"`
		} `json:"farm"`
	}
	doJSON(t, "GET", base+"/healthz", nil, http.StatusOK, &health)
	if health.Status != "ok" || !health.Ready {
		t.Fatalf("health: %+v", health)
	}
	if health.ReplayCache.MaxBytes <= 0 {
		t.Errorf("health replay_cache.max_bytes = %d", health.ReplayCache.MaxBytes)
	}
	if health.Farm.WorkersRegistered != 1 || health.Farm.WorkersLive != 1 {
		t.Errorf("health farm fleet: %+v", health.Farm)
	}
	if health.Farm.WAL.Durable {
		t.Error("in-memory queue reported a durable WAL")
	}
}

// TestStreamingIngestEndToEnd drives the streaming upload path over HTTP:
// the upload response reports in-flight profiling, the analyze that
// follows computes zero region profiles, a re-analysis with a different
// max_k reuses 100% of them, and the profile-cache counters surface on
// /metrics.
func TestStreamingIngestEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)
	base := ts.URL

	var buf bytes.Buffer
	if err := tracefile.Record(&buf, workload.New("npb-is", 8, workload.WithScale(0.05))); err != nil {
		t.Fatal(err)
	}

	var meta struct {
		Key     string `json:"key"`
		Regions int    `json:"regions"`
		Ingest  *struct {
			Streamed         bool `json:"streamed"`
			ProfilesCached   int  `json:"profiles_cached"`
			ProfilesComputed int  `json:"profiles_computed"`
		} `json:"ingest"`
	}
	doJSON(t, "POST", base+"/v1/traces", buf.Bytes(), http.StatusCreated, &meta)
	if meta.Ingest == nil || !meta.Ingest.Streamed {
		t.Fatalf("upload not streamed: %+v", meta.Ingest)
	}
	if meta.Ingest.ProfilesComputed != meta.Regions || meta.Ingest.ProfilesCached != 0 {
		t.Fatalf("upload profiled %d/%d regions (%d cached)",
			meta.Ingest.ProfilesComputed, meta.Regions, meta.Ingest.ProfilesCached)
	}

	// Analyze right after the upload: all profiles come from the cache.
	analyze := func(body string) service.Snapshot {
		var snap service.Snapshot
		doJSON(t, "POST", base+"/v1/jobs", []byte(body), http.StatusAccepted, &snap)
		snap = pollJob(t, base, snap.ID)
		if snap.Status != service.StatusDone {
			t.Fatalf("analyze failed: %s", snap.Error)
		}
		return snap
	}
	snap := analyze(fmt.Sprintf(`{"kind":"analyze","trace":%q}`, meta.Key))
	if snap.Span == nil {
		t.Fatal("analyze job has no span")
	}
	if got := snap.Span.Attrs["profiles_computed"]; got != "0" {
		t.Errorf("analyze after streamed upload computed %s profiles, want 0", got)
	}
	if got := snap.Span.Attrs["profiles_cached"]; got != fmt.Sprint(meta.Regions) {
		t.Errorf("analyze profiles_cached attr = %q, want %d", got, meta.Regions)
	}
	stages := make(map[string]bool)
	for _, st := range snap.Span.Stages {
		stages[st.Name] = true
	}
	if !stages["profile-cache"] || stages["profile"] {
		t.Errorf("analyze stages %v, want profile-cache and no profile", snap.Span.Stages)
	}

	// Re-cluster with a different max_k: new artifact, zero re-profiling.
	snap2 := analyze(fmt.Sprintf(`{"kind":"analyze","trace":%q,"max_k":7}`, meta.Key))
	if snap2.Cached {
		t.Fatal("max_k=7 analysis hit the default artifact")
	}
	if got := snap2.Span.Attrs["profiles_computed"]; got != "0" {
		t.Errorf("re-cluster computed %s profiles, want 0", got)
	}

	// The max_k selection is served with the matching query parameter.
	doJSON(t, "GET", base+"/v1/selections/"+meta.Key+"?max_k=7", nil, http.StatusOK, nil)

	// Counters surfaced on /metrics.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"bp_profile_cache_hits_total", "bp_profile_computed_total", "bp_ingest_traces_total 1", "bp_ingest_profiles_total"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
