// Command bpcamp runs a declarative sweep campaign — workloads × thread
// counts × machine configs × warmup modes × signature variants — through
// the analysis service over a content-addressed store, resumably: progress
// lands in a manifest after every completed cell, so a killed campaign
// picks up where it stopped, and finished cells are never recomputed.
//
// Usage:
//
//	bpcamp -spec sweep.json -store /var/lib/bpstore
//	bpcamp -spec sweep.json -store /var/lib/bpstore -format markdown
//	bpcamp -spec sweep.json -store /var/lib/bpstore -exec farm -farm-workers 4
//	bpcamp -spec sweep.json -store /var/lib/bpstore -max-cells 3   # chunked run
//	bpcamp -store /var/lib/bpstore -list                           # saved manifests
//
// The matrix goes to stdout; per-cell progress and the resume summary go
// to stderr, so stdout is byte-comparable across interrupted, resumed,
// local and farmed runs of the same spec.
//
// See internal/campaign for the spec and manifest formats.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"barrierpoint/internal/campaign"
	"barrierpoint/internal/farm"
	"barrierpoint/internal/service"
	"barrierpoint/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "bpcamp: %v\n", err)
		os.Exit(1)
	}
}

// run parses flags and executes the campaign; it is the testable entry
// point of the tool.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bpcamp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath    = fs.String("spec", "", "campaign spec JSON file (required; see internal/campaign)")
		storeDir    = fs.String("store", "", "content-addressed store directory (required; shared with bptool -cache and bpserve)")
		format      = fs.String("format", "text", "matrix output format: text, markdown or json")
		execMode    = fs.String("exec", "", "override the spec's exec mode: auto, local or farm")
		targetCI    = fs.Float64("target-ci", -1, "override the spec's target relative CI for adaptive estimates (0 disables; changes the manifest identity)")
		workers     = fs.Int("workers", 0, "service worker pool size (default GOMAXPROCS)")
		farmWorkers = fs.Int("farm-workers", 0, "in-process farm workers (lets exec=farm run without an external fleet)")
		maxCells    = fs.Int("max-cells", 0, "stop after computing this many new cells (0 = run to completion); the manifest keeps progress for a later resume")
		quiet       = fs.Bool("q", false, "suppress per-cell progress on stderr")
		list        = fs.Bool("list", false, "list the campaign manifests saved in -store and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	// Validate cheap inputs before any expensive work: a typo'd format
	// must fail now, not after the sweep has run.
	switch *format {
	case "", "text", "markdown", "json":
	default:
		return fmt.Errorf("unknown output format %q (want text, markdown or json)", *format)
	}
	if *list {
		if *storeDir == "" {
			fs.Usage()
			return fmt.Errorf("-list requires -store")
		}
		st, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		names, err := st.Campaigns()
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}
	if *specPath == "" || *storeDir == "" {
		fs.Usage()
		return fmt.Errorf("both -spec and -store are required")
	}

	f, err := os.Open(*specPath)
	if err != nil {
		return err
	}
	spec, err := campaign.Load(f)
	f.Close()
	if err != nil {
		return err
	}
	if *execMode != "" {
		spec.Exec = *execMode
		if err := spec.Validate(); err != nil {
			return err
		}
	}
	if *targetCI >= 0 {
		spec.TargetCI = *targetCI
		if err := spec.Validate(); err != nil {
			return err
		}
	}
	// A standalone bpcamp has no HTTP endpoint for external workers to
	// join, so a farm-forced campaign without in-process workers would
	// wait forever. Fail up front instead.
	if spec.Exec == service.ExecFarm && *farmWorkers <= 0 {
		return fmt.Errorf("exec=farm needs -farm-workers N (bpcamp has no endpoint for an external fleet; use bpserve + bpworker for that)")
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	m := service.New(st, *workers, 0)
	defer m.Shutdown(context.Background())
	if *farmWorkers > 0 {
		q := farm.NewQueue(st, farm.Config{})
		m.SetFarm(q)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		for i := 0; i < *farmWorkers; i++ {
			go farm.RunLocalWorker(ctx, q, st, fmt.Sprintf("bpcamp-%d", i))
		}
	}

	progress := io.Writer(stderr)
	if *quiet {
		progress = io.Discard
	}
	r := &campaign.Runner{
		Store:    st,
		Cells:    &campaign.ServiceRunner{M: m, Exec: spec.Exec, TargetCI: spec.TargetCI, Log: progress},
		Log:      progress,
		MaxCells: *maxCells,
	}
	out, err := r.Run(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(progress, "campaign %s: %d cells resumed from manifest, %d computed\n",
		spec.Name, out.Resumed, out.Computed)
	if out.Incomplete {
		fmt.Fprintf(progress, "campaign %s is incomplete (-max-cells); rerun to resume\n", spec.Name)
	}
	return campaign.RenderMatrix(stdout, out.Matrix(), *format)
}
