package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSpec drops a spec file into a temp dir and returns its path.
func writeSpec(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const miniSpec = `{
  "name": "cli-mini",
  "workloads": ["npb-is"],
  "threads": [8],
  "warmups": ["cold"],
  "scale": 0.05
}`

func TestRunAndResume(t *testing.T) {
	spec := writeSpec(t, miniSpec)
	storeDir := t.TempDir()

	var out1, err1 strings.Builder
	if err := run([]string{"-spec", spec, "-store", storeDir, "-format", "json"}, &out1, &err1); err != nil {
		t.Fatalf("first run: %v\nstderr:\n%s", err, err1.String())
	}
	if !strings.Contains(out1.String(), "Campaign cli-mini") {
		t.Errorf("matrix title missing:\n%s", out1.String())
	}
	if !strings.Contains(err1.String(), "0 cells resumed from manifest, 1 computed") {
		t.Errorf("first-run summary unexpected:\n%s", err1.String())
	}

	// Second run over the same store: everything resumes, stdout is
	// byte-identical.
	var out2, err2 strings.Builder
	if err := run([]string{"-spec", spec, "-store", storeDir, "-format", "json"}, &out2, &err2); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !strings.Contains(err2.String(), "1 cells resumed from manifest, 0 computed") {
		t.Errorf("resume summary unexpected:\n%s", err2.String())
	}
	if out1.String() != out2.String() {
		t.Errorf("resumed matrix differs:\n--- first ---\n%s\n--- second ---\n%s", out1.String(), out2.String())
	}

	// -list shows the saved manifest.
	var outL, errL strings.Builder
	if err := run([]string{"-store", storeDir, "-list"}, &outL, &errL); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(outL.String(), "cli-mini-") {
		t.Errorf("-list output unexpected:\n%s", outL.String())
	}

	// -q silences progress but not the matrix.
	var out3, err3 strings.Builder
	if err := run([]string{"-spec", spec, "-store", storeDir, "-format", "json", "-q"}, &out3, &err3); err != nil {
		t.Fatal(err)
	}
	if err3.Len() != 0 {
		t.Errorf("-q left stderr output:\n%s", err3.String())
	}
	if out3.String() != out1.String() {
		t.Error("-q changed the matrix output")
	}
}

func TestErrors(t *testing.T) {
	storeDir := t.TempDir()
	good := writeSpec(t, miniSpec)
	cases := map[string]struct {
		args []string
		want string // substring the error must contain ("" = any)
	}{
		"missing-spec":       {[]string{"-store", storeDir}, "-spec"},
		"missing-store":      {[]string{"-spec", good}, "-store"},
		"bad-format":         {[]string{"-spec", good, "-store", storeDir, "-format", "yaml"}, "unknown output format"},
		"bad-exec-flag":      {[]string{"-spec", good, "-store", storeDir, "-exec", "cluster"}, "unknown exec mode"},
		"farm-no-workers":    {[]string{"-spec", good, "-store", storeDir, "-exec", "farm"}, "-farm-workers"},
		"spec-zero-scale":    {[]string{"-spec", writeSpec(t, `{"workloads":["npb-is"],"threads":[8],"scale":-0.5}`), "-store", storeDir}, "scale must be > 0"},
		"spec-unknown-bench": {[]string{"-spec", writeSpec(t, `{"workloads":["spec-gcc"],"threads":[8],"scale":0.05}`), "-store", storeDir}, `"spec-gcc"`},
		"spec-typo-field":    {[]string{"-spec", writeSpec(t, `{"worloads":["npb-is"],"threads":[8]}`), "-store", storeDir}, "worloads"},
		"spec-missing-file":  {[]string{"-spec", filepath.Join(storeDir, "nope.json"), "-store", storeDir}, ""},
		"bad-target-ci":      {[]string{"-spec", good, "-store", storeDir, "-target-ci", "1.5"}, "target_ci"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var out, errOut strings.Builder
			err := run(tc.args, &out, &errOut)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error", tc.args)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestTargetCIOverride: -target-ci makes the campaign adaptive — the
// matrix grows error bars — and lands on a manifest distinct from the
// plain run's, so the two never share cells.
func TestTargetCIOverride(t *testing.T) {
	spec := writeSpec(t, miniSpec)
	storeDir := t.TempDir()

	var plain, plainErr strings.Builder
	if err := run([]string{"-spec", spec, "-store", storeDir, "-q"}, &plain, &plainErr); err != nil {
		t.Fatalf("plain run: %v\nstderr:\n%s", err, plainErr.String())
	}
	var adaptive, adaptiveErr strings.Builder
	if err := run([]string{"-spec", spec, "-store", storeDir, "-q", "-target-ci", "0.2"}, &adaptive, &adaptiveErr); err != nil {
		t.Fatalf("adaptive run: %v\nstderr:\n%s", err, adaptiveErr.String())
	}
	// Both matrices carry error bars (every estimate has a CI now); the
	// adaptive one may coincide with the plain one when the initial
	// interval already meets the target, so only the ± rendering and the
	// manifest identity are asserted here.
	if !strings.Contains(plain.String(), "±") || !strings.Contains(adaptive.String(), "±") {
		t.Errorf("matrix has no error bars:\n%s\n%s", plain.String(), adaptive.String())
	}
	// Two manifests now exist: the override changed the identity hash.
	var list strings.Builder
	if err := run([]string{"-store", storeDir, "-list"}, &list, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(list.String(), "cli-mini-"); n != 2 {
		t.Errorf("want 2 manifests after the override, -list shows %d:\n%s", n, list.String())
	}
}

func TestMaxCellsChunksTheRun(t *testing.T) {
	spec := writeSpec(t, `{
  "name": "chunked",
  "workloads": ["npb-is"],
  "threads": [8],
  "warmups": ["cold", "mru"],
  "scale": 0.05
}`)
	storeDir := t.TempDir()

	var out1, err1 strings.Builder
	if err := run([]string{"-spec", spec, "-store", storeDir, "-max-cells", "1"}, &out1, &err1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(err1.String(), "incomplete") {
		t.Errorf("chunked run did not report incompleteness:\n%s", err1.String())
	}

	var out2, err2 strings.Builder
	if err := run([]string{"-spec", spec, "-store", storeDir}, &out2, &err2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(err2.String(), "1 cells resumed from manifest, 1 computed") {
		t.Errorf("resume after chunked run unexpected:\n%s", err2.String())
	}
	if !strings.Contains(out2.String(), "over 2 cells") {
		t.Errorf("final matrix incomplete:\n%s", out2.String())
	}
}
