// Command bptool runs the BarrierPoint pipeline end to end on one workload
// and prints the selection, the estimate, and its accuracy against a full
// detailed simulation.
//
// Usage:
//
//	bptool -workload npb-ft -cores 8
//	bptool -workload npb-sp -cores 32 -warmup mru -skip-full
//	bptool -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/report"
	"barrierpoint/internal/stats"
	"barrierpoint/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "npb-ft", "benchmark name (see -list)")
		cores    = flag.Int("cores", 8, "thread/core count (8 or 32 for Table I machines)")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		warmupFl = flag.String("warmup", "mru+prev", "warmup mode: cold, mru, mru+prev")
		skipFull = flag.Bool("skip-full", false, "skip the ground-truth simulation (no error report)")
		list     = flag.Bool("list", false, "list available workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}

	var mode bp.WarmupMode
	switch *warmupFl {
	case "cold":
		mode = bp.ColdWarmup
	case "mru":
		mode = bp.MRUWarmup
	case "mru+prev":
		mode = bp.MRUPrevWarmup
	default:
		fmt.Fprintf(os.Stderr, "bptool: unknown warmup mode %q\n", *warmupFl)
		os.Exit(2)
	}
	if *cores%8 != 0 || *cores < 8 || *cores > 64 {
		fmt.Fprintln(os.Stderr, "bptool: cores must be a multiple of 8 in [8, 64]")
		os.Exit(2)
	}

	prog := workload.New(*name, *cores, workload.WithScale(*scale))
	mc := bp.TableIMachine(*cores / 8)

	start := time.Now()
	analysis, err := bp.Analyze(prog, bp.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "bptool: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s, %d threads: %d regions, %d barrierpoints (analysis in %v)\n\n",
		prog.Name(), prog.Threads(), prog.Regions(), len(analysis.BarrierPoints()),
		time.Since(start).Round(time.Millisecond))

	t := report.NewTable("Selected barrierpoints", "region", "multiplier", "weight")
	for _, p := range analysis.BarrierPoints() {
		t.AddRow(fmt.Sprintf("%d", p.Region), fmt.Sprintf("%.2f", p.Multiplier), fmt.Sprintf("%.4f", p.Weight))
	}
	t.Render(os.Stdout)

	fmt.Printf("\nserial speedup %.1fx, parallel speedup %.1fx, resource reduction %.1fx\n",
		analysis.SerialSpeedup(), analysis.ParallelSpeedup(), analysis.ResourceReduction())

	start = time.Now()
	est, err := analysis.Estimate(mc, mode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bptool: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nestimate (%s warmup, %v): runtime %.3f ms, IPC %.2f, DRAM APKI %.2f\n",
		mode, time.Since(start).Round(time.Millisecond), est.TimeNs/1e6, est.IPC(), est.DRAMAPKI())

	if *skipFull {
		return
	}
	start = time.Now()
	full, err := bp.SimulateFull(prog, mc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bptool: %v\n", err)
		os.Exit(1)
	}
	act := bp.ActualFrom(full)
	fmt.Printf("actual   (full simulation, %v): runtime %.3f ms, IPC %.2f, DRAM APKI %.2f\n",
		time.Since(start).Round(time.Millisecond), act.TimeNs/1e6, act.IPC(), act.DRAMAPKI())
	fmt.Printf("runtime error %.2f%%, APKI difference %.3f\n",
		stats.AbsPctErr(est.TimeNs, act.TimeNs), est.DRAMAPKI()-act.DRAMAPKI())
}
