// Command bptool runs the BarrierPoint pipeline end to end on one workload
// and prints the selection, the estimate, and its accuracy against a full
// detailed simulation. It can also record workloads to binary trace files
// and analyze those recordings, so the expensive pipeline stages can run
// from disk, out of process.
//
// Usage:
//
//	bptool -workload npb-ft -cores 8
//	bptool -workload npb-sp -cores 32 -warmup mru -skip-full
//	bptool -workload npb-ft -cores 8 -target-ci 0.02
//	bptool -list
//	bptool record -workload npb-ft -cores 8 -gzip -o ft.bptrace
//	bptool info ft.bptrace
//	bptool info -verify ft.bptrace
//	bptool -trace ft.bptrace -skip-full
//	bptool -trace ft.bptrace -cache /var/lib/bpstore -skip-full
//	bptool trace -server http://bpserve:8080 <job-id>
//
// The trace subcommand fetches a job from a bpserve server and prints its
// telemetry span: the trace ID (shared with any farm tasks the job ran)
// and a per-stage timing breakdown.
//
// With -cache, analysis artifacts live in a content-addressed store shared
// with the bpserve service: the first analyze of a trace profiles and
// clusters it, every later analyze of byte-identical content reuses the
// cached selection.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/adaptive"
	"barrierpoint/internal/farm"
	"barrierpoint/internal/report"
	"barrierpoint/internal/service"
	"barrierpoint/internal/stats"
	"barrierpoint/internal/store"
	"barrierpoint/internal/trace"
	"barrierpoint/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "bptool: %v\n", err)
		os.Exit(1)
	}
}

// run dispatches subcommands; it is the testable entry point of the tool.
func run(args []string, stdout, stderr io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "record":
			return runRecord(args[1:], stdout, stderr)
		case "info":
			return runInfo(args[1:], stdout, stderr)
		case "trace":
			return runTrace(args[1:], stdout, stderr)
		}
	}
	return runAnalyze(args, stdout, stderr)
}

// checkCores validates a thread/core count against the Table I machines.
func checkCores(cores int) error {
	if cores%8 != 0 || cores < 8 || cores > 64 {
		return fmt.Errorf("cores must be a multiple of 8 in [8, 64], got %d", cores)
	}
	return nil
}

// checkWorkload validates a benchmark name before construction
// (workload.New panics on unknown names).
func checkWorkload(name string) error {
	if !workload.Exists(name) {
		return fmt.Errorf("unknown workload %q (see bptool -list)", name)
	}
	return nil
}

// parse wraps FlagSet.Parse, mapping -h/-help to a clean success.
func parse(fs *flag.FlagSet, args []string) (help bool, err error) {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return true, nil
		}
		return false, err
	}
	return false, nil
}

// runRecord records a built-in workload to a binary trace file.
func runRecord(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bptool record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name  = fs.String("workload", "npb-ft", "benchmark name (see bptool -list)")
		cores = fs.Int("cores", 8, "thread/core count (8 or 32 for Table I machines)")
		scale = fs.Float64("scale", 1.0, "workload scale factor")
		gz    = fs.Bool("gzip", false, "gzip-compress trace chunks")
		out   = fs.String("o", "", "output path (default <workload>-<cores>t.bptrace)")
	)
	if help, err := parse(fs, args); help || err != nil {
		return err
	}
	if err := checkWorkload(*name); err != nil {
		return err
	}
	if err := checkCores(*cores); err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%dt.bptrace", *name, *cores)
	}

	prog := workload.New(*name, *cores, workload.WithScale(*scale))
	start := time.Now()
	if err := bp.SaveTrace(path, prog, bp.WithTraceGzip(*gz)); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "recorded %s (%d threads, %d regions) to %s: %.1f MB in %v\n",
		prog.Name(), prog.Threads(), prog.Regions(), path,
		float64(st.Size())/(1<<20), time.Since(start).Round(time.Millisecond))
	return nil
}

// runTrace fetches a job snapshot from a bpserve server and prints its
// telemetry span: trace ID, wall clock, and the per-stage breakdown. The
// sequential stages partition the job's wall clock (the remainder prints
// as "(other)"); concurrent stages, like replay-cache decode work, overlap
// them and are listed separately.
func runTrace(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bptool trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://127.0.0.1:8080", "bpserve base URL")
	if help, err := parse(fs, args); help || err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: bptool trace [-server URL] <job-id>")
	}
	id := fs.Arg(0)

	resp, err := http.Get(strings.TrimRight(*server, "/") + "/v1/jobs/" + url.PathEscape(id))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("fetching job %s: %s", id, resp.Status)
	}
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decoding job snapshot: %w", err)
	}

	fmt.Fprintf(stdout, "job:      %s (%s %.12s)\n", snap.ID, snap.Request.Kind, snap.Request.Trace)
	fmt.Fprintf(stdout, "status:   %s\n", snap.Status)
	if snap.Recovered {
		fmt.Fprintln(stdout, "recovered: true (replayed from the job journal after a restart)")
	}
	if snap.Error != "" {
		fmt.Fprintf(stdout, "error:    %s\n", snap.Error)
	}
	if snap.TraceID != "" {
		fmt.Fprintf(stdout, "trace ID: %s\n", snap.TraceID)
	}
	if snap.Span == nil {
		fmt.Fprintln(stdout, "no span recorded (job not started yet)")
		return nil
	}
	sp := snap.Span
	wall := time.Duration(sp.DurationNs)
	if sp.End.IsZero() {
		fmt.Fprintf(stdout, "running:  %v so far\n", time.Since(sp.Start).Round(time.Millisecond))
	} else {
		fmt.Fprintf(stdout, "wall:     %v\n", wall.Round(time.Microsecond))
	}
	fmt.Fprintf(stdout, "\n%-18s %12s %7s %6s\n", "stage", "time", "share", "count")
	var seqSum int64
	for _, st := range sp.Stages {
		if st.Concurrent {
			continue
		}
		seqSum += st.DurationNs
		share := ""
		if wall > 0 {
			share = fmt.Sprintf("%5.1f%%", 100*float64(st.DurationNs)/float64(sp.DurationNs))
		}
		fmt.Fprintf(stdout, "%-18s %12v %7s %6d\n",
			st.Name, time.Duration(st.DurationNs).Round(time.Microsecond), share, st.Count)
	}
	if rest := sp.DurationNs - seqSum; rest > 0 && wall > 0 {
		fmt.Fprintf(stdout, "%-18s %12v %6.1f%%\n",
			"(other)", time.Duration(rest).Round(time.Microsecond), 100*float64(rest)/float64(sp.DurationNs))
	}
	for _, st := range sp.Stages {
		if !st.Concurrent {
			continue
		}
		fmt.Fprintf(stdout, "%-18s %12v %7s %6d\n",
			st.Name+" ‖", time.Duration(st.DurationNs).Round(time.Microsecond), "", st.Count)
	}
	return nil
}

// runInfo prints the metadata and streamed statistics of a trace file.
func runInfo(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bptool info", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verify := fs.Bool("verify", false, "fully decode every chunk to check integrity")
	if help, err := parse(fs, args); help || err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: bptool info [-verify] <file.bptrace>")
	}
	path := fs.Arg(0)

	f, err := bp.OpenTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := os.Stat(path)
	if err != nil {
		return err
	}

	compression := "none"
	if f.Gzipped() {
		compression = "gzip"
	}
	fmt.Fprintf(stdout, "program:     %s\n", f.Name())
	fmt.Fprintf(stdout, "threads:     %d\n", f.Threads())
	fmt.Fprintf(stdout, "regions:     %d\n", f.Regions())
	fmt.Fprintf(stdout, "compression: %s\n", compression)
	fmt.Fprintf(stdout, "file size:   %d bytes\n", st.Size())

	// Integrity first: a corrupt chunk silently truncates its stream (the
	// Stream interface has no error channel), so statistics computed below
	// would be garbage on a damaged file.
	if *verify {
		if err := f.Verify(); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "integrity:   ok")
	}

	// Stream every region (never more than one in memory) for totals.
	var total, largest uint64
	largestRegion := 0
	for i := 0; i < f.Regions(); i++ {
		_, n := trace.RegionInstrs(f.Region(i), f.Threads())
		total += n
		if n > largest {
			largest, largestRegion = n, i
		}
	}
	fmt.Fprintf(stdout, "instructions: %d total", total)
	if f.Regions() > 0 {
		fmt.Fprintf(stdout, ", largest region %d with %d", largestRegion, largest)
	}
	fmt.Fprintln(stdout)
	return nil
}

// cachedAnalysis runs the analyze stage through a content-addressed store
// shared with bpserve: the trace is filed under its content key (in-memory
// workloads are recorded first), and the selection is served from the store
// when already cached — profiling and clustering are skipped entirely. The
// returned program replays from the store's copy of the trace, so later
// stages stream exactly the bytes the key addresses.
func cachedAnalysis(st *store.Store, prog bp.Program, tracePath string, rc *bp.ReplayCache) (*bp.Analysis, bp.Program, string, string, error) {
	var key string
	var err error
	if tracePath != "" {
		key, _, err = st.ImportTrace(tracePath)
	} else {
		// Stream the recording straight into the store: the bytes are
		// written once, and PutTrace discards them again if byte-identical
		// content is already filed.
		pr, pw := io.Pipe()
		go func() { pw.CloseWithError(bp.RecordTrace(pw, prog)) }()
		key, _, err = st.PutTrace(pr)
	}
	if err != nil {
		return nil, nil, "", "", err
	}
	selBytes, cached, err := service.AnalyzeCachedReplay(st, key, bp.DefaultConfig(), rc)
	if err != nil {
		return nil, nil, "", "", err
	}
	sel, err := bp.LoadSelection(bytes.NewReader(selBytes))
	if err != nil {
		return nil, nil, "", "", err
	}
	f, err := st.OpenTrace(key)
	if err != nil {
		return nil, nil, "", "", err
	}
	replayProg := &storeTrace{Program: rc.Program(f, key), f: f}
	a, err := sel.Bind(replayProg)
	if err != nil {
		f.Close()
		return nil, nil, "", "", err
	}
	note := ", selection computed and cached"
	if cached {
		note = ", selection reused from cache"
	}
	return a, replayProg, fmt.Sprintf("%s, trace %s", note, key[:12]), key, nil
}

// storeTrace pairs a store trace's cached replay view with the file handle
// it reads, so the caller can close the file when done.
type storeTrace struct {
	bp.Program
	f *bp.TraceFile
}

// Close releases the underlying trace file.
func (t *storeTrace) Close() error { return t.f.Close() }

// runAnalyze is the classic pipeline: analyze, estimate, and (optionally)
// validate against a full simulation — from a built-in workload or from a
// recorded trace file.
func runAnalyze(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bptool", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name      = fs.String("workload", "npb-ft", "benchmark name (see -list)")
		cores     = fs.Int("cores", 8, "thread/core count (8 or 32 for Table I machines)")
		scale     = fs.Float64("scale", 1.0, "workload scale factor")
		tracePath = fs.String("trace", "", "analyze a recorded trace file instead of a built-in workload")
		cacheDir  = fs.String("cache", "", "content-addressed store directory: cache and reuse analysis artifacts (shared with bpserve)")
		warmupFl  = fs.String("warmup", "mru+prev", "warmup mode: cold, mru, mru+prev")
		skipFull  = fs.Bool("skip-full", false, "skip the ground-truth simulation (no error report)")
		list      = fs.Bool("list", false, "list available workloads and exit")
		replayMB  = fs.Int64("replay-cache-mb", 256, "decoded-region replay cache budget for recorded traces, MiB (0 disables)")
		targetCI  = fs.Float64("target-ci", 0, "target relative confidence interval on the runtime estimate; promotes extra regions adaptively until met (0 disables)")
		confid    = fs.Float64("confidence", adaptive.DefaultConfidence, "confidence level for the estimate's error bars")
	)
	if help, err := parse(fs, args); help || err != nil {
		return err
	}
	if *targetCI < 0 || *targetCI >= 1 {
		return fmt.Errorf("-target-ci must be in [0, 1), got %v", *targetCI)
	}
	if !(*confid > 0 && *confid < 1) {
		return fmt.Errorf("-confidence must be in (0, 1), got %v", *confid)
	}

	if *list {
		for _, n := range workload.Names() {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}

	// One parser serves CLI and server, so both accept the same warmup
	// vocabulary over the shared store.
	mode, err := service.ParseWarmup(*warmupFl)
	if err != nil {
		return err
	}

	// One replay cache serves the whole pipeline run: analyze, warmup
	// capture, point simulation and the ground-truth pass then decode each
	// region of a recorded trace once.
	var rc *bp.ReplayCache
	if *replayMB > 0 {
		rc = bp.NewReplayCache(*replayMB << 20)
	}

	var prog bp.Program
	if *tracePath != "" {
		f, err := bp.OpenTraceCached(*tracePath, rc)
		if err != nil {
			return err
		}
		defer f.Close()
		prog = f
	} else {
		if err := checkWorkload(*name); err != nil {
			return err
		}
		if err := checkCores(*cores); err != nil {
			return err
		}
		prog = workload.New(*name, *cores, workload.WithScale(*scale))
	}
	if err := checkCores(prog.Threads()); err != nil {
		return err
	}
	mc := bp.TableIMachine(prog.Threads() / 8)

	start := time.Now()
	var analysis *bp.Analysis
	var note string
	// With -cache, point simulations also go through the store: results
	// computed here are reused by later runs, by bpserve jobs, and by farm
	// workers over the same store — and vice versa.
	var pointRunner *farm.CachedRunner
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		if err != nil {
			return err
		}
		var key string
		analysis, prog, note, key, err = cachedAnalysis(st, prog, *tracePath, rc)
		if err != nil {
			return err
		}
		if closer, ok := prog.(interface{ Close() error }); ok {
			defer closer.Close()
		}
		pointRunner = &farm.CachedRunner{St: st, TraceKey: key, Inner: bp.LocalRunner{}}
	} else {
		var err error
		analysis, err = bp.Analyze(prog, bp.DefaultConfig())
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "%s, %d threads: %d regions, %d barrierpoints (analysis in %v%s)\n\n",
		prog.Name(), prog.Threads(), prog.Regions(), len(analysis.BarrierPoints()),
		time.Since(start).Round(time.Millisecond), note)

	t := report.NewTable("Selected barrierpoints", "region", "multiplier", "weight")
	for _, p := range analysis.BarrierPoints() {
		t.AddRow(fmt.Sprintf("%d", p.Region), fmt.Sprintf("%.2f", p.Multiplier), fmt.Sprintf("%.4f", p.Weight))
	}
	t.Render(stdout)

	fmt.Fprintf(stdout, "\nserial speedup %.1fx, parallel speedup %.1fx, resource reduction %.1fx\n",
		analysis.SerialSpeedup(), analysis.ParallelSpeedup(), analysis.ResourceReduction())

	start = time.Now()
	// Every estimate goes through the adaptive controller: with no target it
	// reproduces the standard one-rep-per-cluster reconstruction bit for bit
	// and just attaches error bars; with -target-ci it also promotes regions
	// until the runtime CI meets the target.
	var runner bp.PointRunner = bp.LocalRunner{}
	if pointRunner != nil {
		runner = pointRunner
	}
	res, err := adaptive.Run(analysis, runner, mc, mode, adaptive.Options{TargetRel: *targetCI, Confidence: *confid})
	if err != nil {
		return err
	}
	var pointNote string
	if pointRunner != nil {
		pointNote = fmt.Sprintf(", %d/%d point results reused from cache",
			pointRunner.Hits, pointRunner.Hits+pointRunner.Misses)
	}
	est := res.Estimate.Estimate
	fmt.Fprintf(stdout, "\nestimate (%s warmup, %v%s): runtime %s ms (±%s%% at %g%% confidence), IPC %.2f, DRAM APKI %.2f\n",
		mode, time.Since(start).Round(time.Millisecond), pointNote,
		report.FormatInterval(est.TimeNs/1e6, res.Estimate.Margin.TimeNs/1e6, 3),
		report.FormatMetric(res.Estimate.RelTime()*100, 2), *confid*100,
		est.IPC(), est.DRAMAPKI())
	if *targetCI > 0 {
		met := "met"
		if !res.Met {
			met = "not met, selection exhausted"
		}
		fmt.Fprintf(stdout, "adaptive: simulated %d/%d regions in %d rounds (initial ±%s%%, target ±%s%% %s)\n",
			len(res.Simulated), prog.Regions(), len(res.Rounds),
			report.FormatMetric(res.InitialRel*100, 2), report.FormatMetric(*targetCI*100, 2), met)
	}

	if *skipFull {
		return nil
	}
	start = time.Now()
	full, err := bp.SimulateFull(prog, mc)
	if err != nil {
		return err
	}
	act := bp.ActualFrom(full)
	fmt.Fprintf(stdout, "actual   (full simulation, %v): runtime %.3f ms, IPC %.2f, DRAM APKI %.2f\n",
		time.Since(start).Round(time.Millisecond), act.TimeNs/1e6, act.IPC(), act.DRAMAPKI())
	fmt.Fprintf(stdout, "runtime error %.2f%%, APKI difference %.3f\n",
		stats.AbsPctErr(est.TimeNs, act.TimeNs), est.DRAMAPKI()-act.DRAMAPKI())
	covers := "no"
	if res.Estimate.CoversTime(act.TimeNs) {
		covers = "yes"
	}
	fmt.Fprintf(stdout, "CI covers actual: %s\n", covers)
	return nil
}
