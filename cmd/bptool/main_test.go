package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exec runs the tool with args and returns its stdout, failing on error.
func exec(t *testing.T, args ...string) string {
	t.Helper()
	var out, errOut strings.Builder
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v) = %v\nstderr:\n%s", args, err, errOut.String())
	}
	return out.String()
}

// execErr runs the tool expecting failure and returns the error.
func execErr(t *testing.T, args ...string) error {
	t.Helper()
	var out, errOut strings.Builder
	err := run(args, &out, &errOut)
	if err == nil {
		t.Fatalf("run(%v) succeeded, want error\nstdout:\n%s", args, out.String())
	}
	return err
}

func TestListWorkloads(t *testing.T) {
	out := exec(t, "-list")
	for _, want := range []string{"npb-ft", "npb-is", "parsec-bodytrack"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestRecordInfoAnalyzePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline twice")
	}
	path := filepath.Join(t.TempDir(), "ft.bptrace")

	out := exec(t, "record", "-workload", "npb-ft", "-cores", "8", "-scale", "0.1", "-gzip", "-o", path)
	if !strings.Contains(out, "recorded npb-ft (8 threads, 34 regions)") {
		t.Errorf("record output unexpected:\n%s", out)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("record did not create the file: %v", err)
	}

	out = exec(t, "info", "-verify", path)
	for _, want := range []string{
		"program:     npb-ft",
		"threads:     8",
		"regions:     34",
		"compression: gzip",
		"integrity:   ok",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("info output missing %q:\n%s", want, out)
		}
	}

	// Analyze from the recording: the full pipeline, machine sized from
	// the file's thread count.
	out = exec(t, "-trace", path, "-warmup", "cold", "-skip-full")
	if !strings.Contains(out, "npb-ft, 8 threads: 34 regions") {
		t.Errorf("analyze-from-trace output unexpected:\n%s", out)
	}
	if !strings.Contains(out, "Selected barrierpoints") || !strings.Contains(out, "estimate (cold warmup") {
		t.Errorf("analyze-from-trace output missing sections:\n%s", out)
	}
}

func TestRecordDefaultOutputPath(t *testing.T) {
	t.Chdir(t.TempDir())
	exec(t, "record", "-workload", "npb-is", "-cores", "8", "-scale", "0.1")
	if _, err := os.Stat("npb-is-8t.bptrace"); err != nil {
		t.Fatalf("default output file missing: %v", err)
	}
}

func TestAnalyzeWorkloadDirect(t *testing.T) {
	out := exec(t, "-workload", "npb-is", "-cores", "8", "-scale", "0.1", "-warmup", "mru", "-skip-full")
	if !strings.Contains(out, "npb-is, 8 threads") || !strings.Contains(out, "estimate (mru warmup") {
		t.Errorf("analyze output unexpected:\n%s", out)
	}
	// Every estimate carries error bars, even without -target-ci.
	if !strings.Contains(out, "±") || !strings.Contains(out, "95% confidence") {
		t.Errorf("estimate line has no confidence interval:\n%s", out)
	}
	if strings.Contains(out, "adaptive:") {
		t.Errorf("no -target-ci but adaptive promotion ran:\n%s", out)
	}
}

// TestAnalyzeAdaptive runs the acceptance example: a ±2% target on npb-ft
// promotes extra regions, reports the effort, and the final interval covers
// the ground-truth runtime.
func TestAnalyzeAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("runs adaptive promotion plus a full ground-truth simulation")
	}
	out := exec(t, "-workload", "npb-ft", "-cores", "8", "-scale", "0.25", "-warmup", "mru+prev", "-target-ci", "0.02")
	if !strings.Contains(out, "adaptive: simulated ") || !strings.Contains(out, "target ±2.00% met") {
		t.Errorf("adaptive run missing promotion report:\n%s", out)
	}
	if !strings.Contains(out, "CI covers actual: yes") {
		t.Errorf("±2%% interval does not cover the ground truth:\n%s", out)
	}
}

// TestAnalyzeWithCache drives the -cache flag twice over one recording:
// the first run computes and caches the selection, the second must reuse
// it from the store (the artifact layer shared with bpserve).
func TestAnalyzeWithCache(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "is.bptrace")
	cacheDir := filepath.Join(dir, "store")
	exec(t, "record", "-workload", "npb-is", "-cores", "8", "-scale", "0.05", "-o", tracePath)

	out := exec(t, "-trace", tracePath, "-cache", cacheDir, "-warmup", "cold", "-skip-full")
	if !strings.Contains(out, "selection computed and cached") {
		t.Errorf("first cached run output unexpected:\n%s", out)
	}
	if !strings.Contains(out, ", 0/") || !strings.Contains(out, "point results reused from cache") {
		t.Errorf("first cached run should report zero point reuse:\n%s", out)
	}

	out = exec(t, "-trace", tracePath, "-cache", cacheDir, "-warmup", "cold", "-skip-full")
	if !strings.Contains(out, "selection reused from cache") {
		t.Errorf("second cached run did not hit the store:\n%s", out)
	}
	// Point-simulation results cache too (shared with farm workers and
	// bpserve jobs): on the second run every point is a store hit.
	if strings.Contains(out, ", 0/") || !strings.Contains(out, "point results reused from cache") {
		t.Errorf("second cached run recomputed point results:\n%s", out)
	}

	// A built-in workload routes through the same store: identical content
	// recorded again lands on the same key and reuses the selection.
	out = exec(t, "-workload", "npb-is", "-cores", "8", "-scale", "0.05", "-cache", cacheDir, "-warmup", "cold", "-skip-full")
	if !strings.Contains(out, "selection reused from cache") {
		t.Errorf("workload run did not hit the cache of its identical recording:\n%s", out)
	}
}

func TestHelpIsNotAnError(t *testing.T) {
	for _, args := range [][]string{{"-h"}, {"record", "-h"}, {"info", "-h"}} {
		var out, errOut strings.Builder
		if err := run(args, &out, &errOut); err != nil {
			t.Errorf("run(%v) = %v, want nil (usage on stderr)", args, err)
		}
		if !strings.Contains(errOut.String(), "-workload") && !strings.Contains(errOut.String(), "-verify") {
			t.Errorf("run(%v) printed no usage:\n%s", args, errOut.String())
		}
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]string{
		"bad-warmup":          {"-workload", "npb-is", "-scale", "0.1", "-warmup", "nope"},
		"bad-cores":           {"-workload", "npb-is", "-cores", "7"},
		"zero-cores":          {"-workload", "npb-is", "-cores", "0"},
		"bad-record-cores":    {"record", "-workload", "npb-is", "-cores", "12"},
		"bad-workload":        {"-workload", "npb-zz", "-cores", "8"},
		"bad-record-workload": {"record", "-workload", "npb-zz"},
		"info-missing":        {"info", filepath.Join(dir, "nope.bptrace")},
		"info-no-arg":         {"info"},
		"bad-flag":            {"-definitely-not-a-flag"},
		"huge-target-ci":      {"-workload", "npb-is", "-scale", "0.1", "-target-ci", "1.5"},
		"negative-target-ci":  {"-workload", "npb-is", "-scale", "0.1", "-target-ci", "-0.1"},
		"zero-confidence":     {"-workload", "npb-is", "-scale", "0.1", "-confidence", "0"},
		"huge-confidence":     {"-workload", "npb-is", "-scale", "0.1", "-confidence", "1.2"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) { execErr(t, args...) })
	}

	// A non-trace file must be rejected cleanly.
	junk := filepath.Join(dir, "junk.bptrace")
	if err := os.WriteFile(junk, []byte("this is not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := execErr(t, "info", junk); !strings.Contains(err.Error(), "tracefile") {
		t.Errorf("info on junk file: unexpected error %v", err)
	}
}
